//! The flooding baseline.
//!
//! "The simplest way to obtain broadcast in a multiple hop network is by
//! employing flooding. That is, the sender sends the message to everyone in
//! its transmission range. Each device that receives a message for the first
//! time delivers it to the application and also forwards it to all other
//! devices in its range. While this form of dissemination is very robust, it
//! is also very wasteful and may cause a large number of collisions."
//!
//! The flooding node still signs and verifies messages (so the *validity*
//! property holds for it too); what it lacks is the overlay (every node
//! forwards every message) and the gossip/recovery machinery.

use std::collections::HashSet;
use std::sync::Arc;

use byzcast_core::message::{DataMsg, MessageId, WireMsg};
use byzcast_crypto::{Signer, Verifier};
use byzcast_sim::{AppPayload, Context, NodeId, Protocol, TimerKey};

/// A node running plain flooding over signed data messages.
pub struct FloodingNode {
    id: NodeId,
    signer: Box<dyn Signer + Send>,
    verifier: Arc<dyn Verifier + Send + Sync>,
    seen: HashSet<MessageId>,
    next_seq: u64,
    /// Data messages this node forwarded.
    pub forwards: u64,
    /// Receptions dropped for bad signatures.
    pub bad_signatures: u64,
}

impl FloodingNode {
    /// Creates a node.
    ///
    /// # Panics
    ///
    /// Panics if `signer` does not sign as `id`.
    pub fn new(
        id: NodeId,
        signer: Box<dyn Signer + Send>,
        verifier: Arc<dyn Verifier + Send + Sync>,
    ) -> Self {
        assert_eq!(signer.id().0, id.0, "signer must sign as the node's own id");
        FloodingNode {
            id,
            signer,
            verifier,
            seen: HashSet::new(),
            next_seq: 0,
            forwards: 0,
            bad_signatures: 0,
        }
    }

    /// Number of distinct messages seen so far.
    pub fn seen_count(&self) -> usize {
        self.seen.len()
    }
}

impl Protocol for FloodingNode {
    type Msg = WireMsg;

    fn on_packet(&mut self, ctx: &mut Context<'_, WireMsg>, _from: NodeId, msg: &WireMsg) {
        let WireMsg::Data(m) = msg else {
            return; // flooding ignores all control traffic
        };
        if self.seen.contains(&m.id) {
            return;
        }
        if !m.verify(self.verifier.as_ref()) {
            self.bad_signatures += 1;
            return;
        }
        self.seen.insert(m.id);
        ctx.deliver(m.id.origin, m.payload_id);
        ctx.send(WireMsg::Data(m.with_ttl(1)));
        self.forwards += 1;
    }

    fn on_timer(&mut self, _ctx: &mut Context<'_, WireMsg>, _timer: TimerKey) {}

    fn on_app_broadcast(&mut self, ctx: &mut Context<'_, WireMsg>, payload: AppPayload) {
        self.next_seq += 1;
        let m = DataMsg::sign(
            self.signer.as_ref(),
            self.next_seq,
            payload.id,
            payload.size_bytes as u32,
        );
        self.seen.insert(m.id);
        ctx.deliver(self.id, payload.id);
        ctx.send(WireMsg::Data(m));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzcast_crypto::{KeyRegistry, SignerId, SimScheme};
    use byzcast_sim::node::Action;
    use byzcast_sim::{SimRng, SimTime};

    fn node(id: u32) -> (FloodingNode, KeyRegistry<SimScheme>) {
        let reg: KeyRegistry<SimScheme> = KeyRegistry::generate(3, 8);
        let verifier: Arc<dyn Verifier + Send + Sync> = Arc::new(reg.verifier());
        (
            FloodingNode::new(NodeId(id), Box::new(reg.signer(SignerId(id))), verifier),
            reg,
        )
    }

    fn drive(
        n: &mut FloodingNode,
        f: impl FnOnce(&mut FloodingNode, &mut Context<'_, WireMsg>),
    ) -> Vec<Action<WireMsg>> {
        let mut rng = SimRng::new(0);
        let mut actions = Vec::new();
        {
            let mut ctx = Context::new(n.id, SimTime::from_secs(1), &mut rng, &mut actions);
            f(n, &mut ctx);
        }
        actions
    }

    #[test]
    fn broadcast_sends_and_delivers() {
        let (mut n, _) = node(0);
        let actions = drive(&mut n, |n, ctx| {
            n.on_app_broadcast(
                ctx,
                AppPayload {
                    id: 9,
                    size_bytes: 100,
                },
            )
        });
        assert!(matches!(&actions[0], Action::Deliver { payload_id: 9, .. }));
        assert!(matches!(&actions[1], Action::Send(WireMsg::Data(_))));
    }

    #[test]
    fn first_reception_forwards_duplicates_do_not() {
        let (mut n, reg) = node(1);
        let m = DataMsg::sign(&reg.signer(SignerId(0)), 1, 5, 64);
        let a1 = drive(&mut n, |n, ctx| {
            n.on_packet(ctx, NodeId(0), &WireMsg::Data(m))
        });
        assert_eq!(a1.len(), 2); // deliver + forward
        assert_eq!(n.forwards, 1);
        let a2 = drive(&mut n, |n, ctx| {
            n.on_packet(ctx, NodeId(2), &WireMsg::Data(m))
        });
        assert!(a2.is_empty());
        assert_eq!(n.seen_count(), 1);
    }

    #[test]
    fn bad_signature_is_dropped() {
        let (mut n, reg) = node(1);
        let mut m = DataMsg::sign(&reg.signer(SignerId(0)), 1, 5, 64);
        m.payload_id = 6;
        let a = drive(&mut n, |n, ctx| {
            n.on_packet(ctx, NodeId(0), &WireMsg::Data(m))
        });
        assert!(a.is_empty());
        assert_eq!(n.bad_signatures, 1);
    }

    #[test]
    fn control_traffic_is_ignored() {
        use byzcast_core::message::{GossipMsg, WireMsg};
        let (mut n, _) = node(1);
        let a = drive(&mut n, |n, ctx| {
            n.on_packet(
                ctx,
                NodeId(0),
                &WireMsg::Gossip(GossipMsg::of_entries(vec![])),
            )
        });
        assert!(a.is_empty());
    }
}
