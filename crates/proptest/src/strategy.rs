//! Value-generation strategies: integer ranges, `any::<T>()`, and tuples.

use std::fmt::Debug;
use std::ops::Range;

/// The deterministic generator behind every strategy (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero. The modulo bias is
    /// negligible for test-case generation.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized + Debug {
    /// Draws a value from the type's full range.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// A strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, usize);

// u64 needs care: a full-width `Range<u64>` span can be 0 after wrapping only
// when the range covers every value, which `start < end` excludes.
impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Strategy for Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        // 53 uniform mantissa bits, scaled into the range; good enough for
        // test-case generation (no subnormal or rounding-edge coverage).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_strategy_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_strategy_tuple!(A);
impl_strategy_tuple!(A, B);
impl_strategy_tuple!(A, B, C);
impl_strategy_tuple!(A, B, C, D);
impl_strategy_tuple!(A, B, C, D, E);
impl_strategy_tuple!(A, B, C, D, E, F);
impl_strategy_tuple!(A, B, C, D, E, F, G);
impl_strategy_tuple!(A, B, C, D, E, F, G, H);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (0u8..5).generate(&mut rng);
            assert!(w < 5);
            let x = (1u64..u64::MAX).generate(&mut rng);
            assert!(x >= 1);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a: Vec<u64> = {
            let mut rng = TestRng::new(42);
            (0..10).map(|_| rng.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = TestRng::new(42);
            (0..10).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn tuples_compose() {
        let mut rng = TestRng::new(7);
        let (a, b, c) = (0u8..3, 0u64..30, 0u64..60).generate(&mut rng);
        assert!(a < 3 && b < 30 && c < 60);
    }
}
