//! The case runner: configuration, failure reporting, reject handling.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::strategy::{Strategy, TestRng};

/// Runner configuration (`ProptestConfig` in the prelude).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum rejected (`prop_assume!`) cases before giving up.
    pub max_global_rejects: u32,
    /// Unused; kept for source compatibility with real proptest configs.
    pub max_local_rejects: u32,
    /// Unused; the shim does not shrink.
    pub max_shrink_iters: u32,
}

impl Default for Config {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        Config {
            cases,
            max_global_rejects: 65_536,
            max_local_rejects: 65_536,
            max_shrink_iters: 0,
        }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the test fails.
    Fail(String),
    /// An assumption did not hold; the case is discarded.
    Reject(String),
}

impl TestCaseError {
    /// A failing case with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (discarded) case with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// FNV-1a, used to derive a stable per-test seed from the test name.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `test` over `config.cases` generated cases, panicking with the
/// offending inputs on the first failure. The RNG seed is derived from the
/// test name (override with `PROPTEST_SEED`), so runs are reproducible.
pub fn run_cases<S, F>(name: &str, config: &Config, strategy: &S, mut test: F)
where
    S: Strategy,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    let seed = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| fnv1a(name));
    let mut rng = TestRng::new(seed);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut case_index = 0u64;
    while passed < config.cases {
        let value = strategy.generate(&mut rng);
        let repr = format!("{value:?}");
        case_index += 1;
        let outcome = catch_unwind(AssertUnwindSafe(|| test(value)));
        match outcome {
            Ok(Ok(())) => passed += 1,
            Ok(Err(TestCaseError::Reject(why))) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!("{name}: too many rejected cases (last: {why})");
                }
            }
            Ok(Err(TestCaseError::Fail(msg))) => {
                panic!("{name}: case #{case_index} failed (seed {seed}):\n{msg}\ninputs: {repr}");
            }
            Err(panic) => {
                let msg = panic_message(&panic);
                panic!("{name}: case #{case_index} panicked (seed {seed}): {msg}\ninputs: {repr}");
            }
        }
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u32;
        let config = Config {
            cases: 50,
            ..Config::default()
        };
        run_cases("always_ok", &config, &(0u32..10), |v| {
            assert!(v < 10);
            count += 1;
            Ok(())
        });
        assert_eq!(count, 50);
    }

    #[test]
    #[should_panic(expected = "inputs:")]
    fn failing_property_reports_inputs() {
        let config = Config {
            cases: 50,
            ..Config::default()
        };
        run_cases("always_fail", &config, &(0u32..10), |_| {
            Err(TestCaseError::fail("nope"))
        });
    }

    #[test]
    fn rejects_are_not_counted_as_cases() {
        let mut executed = 0u32;
        let config = Config {
            cases: 10,
            ..Config::default()
        };
        run_cases("half_reject", &config, &(0u32..10), |v| {
            if v % 2 == 0 {
                return Err(TestCaseError::reject("even"));
            }
            executed += 1;
            Ok(())
        });
        assert_eq!(executed, 10);
    }
}
