//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! This workspace builds in environments with no access to crates.io, so the
//! property tests run against this shim instead of the real library. It
//! reproduces the subset of the API the tests use — the `proptest!` macro,
//! integer-range and `any::<T>()` strategies, tuple and `collection::vec`
//! combinators, `prop_assert*!` / `prop_assume!`, and `ProptestConfig` — with
//! deterministic case generation (seeded per test name, overridable with
//! `PROPTEST_SEED`) and no shrinking: a failing case reports its inputs
//! verbatim so it can be pinned as an explicit regression test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The commonly used exports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($cfg); $($rest)*);
    };
    (@fns ($cfg:expr);) => {};
    (@fns ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            $crate::test_runner::run_cases(
                stringify!($name),
                &config,
                &($($strat,)+),
                |case| {
                    let ($($arg,)+) = case;
                    (move || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        Ok(())
                    })()
                },
            );
        }
        $crate::proptest!(@fns ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::test_runner::Config::default()); $($rest)*);
    };
}

/// Fails the current test case with a message when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current test case when the two expressions are not equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Fails the current test case when the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discards the current case (it is regenerated, not counted) when the
/// assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
