//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use crate::strategy::{Strategy, TestRng};

/// A strategy producing `Vec`s of values drawn from an element strategy.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generates vectors with lengths drawn from `size` and elements from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.clone().generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_and_elements_respect_ranges() {
        let s = vec(1u32..50, 0..8);
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v.len() < 8);
            assert!(v.iter().all(|&x| (1..50).contains(&x)));
        }
    }
}
