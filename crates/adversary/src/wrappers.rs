//! Adversaries that wrap a correct protocol instance and perturb its output.

use byzcast_core::message::WireMsg;
use byzcast_core::ByzcastNode;
use byzcast_overlay::{NeighborTable, OverlayDecision, OverlayProtocol, OverlayRole, TrustView};
use byzcast_sim::node::Action;
use byzcast_sim::{AppPayload, Context, NodeId, Protocol, SimDuration, TimerKey};

use crate::{capture, emit};

/// An overlay "rule" that always claims membership — injected into wrapped
/// nodes so their beacons advertise `Dominator` regardless of topology.
#[derive(Clone, Copy, Debug, Default)]
pub struct AlwaysDominator;

impl OverlayProtocol for AlwaysDominator {
    fn decide(&self, _: NodeId, _: &NeighborTable, _: &dyn TrustView) -> OverlayDecision {
        OverlayDecision {
            role: OverlayRole::Dominator,
            marked: true,
        }
    }
    fn name(&self) -> &'static str {
        "always-dominator"
    }
}

/// What a [`MuteNode`] refuses to transmit.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum MutePolicy {
    /// Drop data forwards and recovery responses; keep gossiping (the node
    /// even advertises messages it will not forward).
    #[default]
    DropData,
    /// Drop data *and* gossip; keep only beacons (fully mute on the data
    /// plane but still claiming overlay membership).
    DropDataAndGossip,
    /// Drop everything, including beacons (quickly ages out of neighbour
    /// tables; the weakest mute variant).
    DropEverything,
}

/// A mute Byzantine node: participates in overlay maintenance — claiming to
/// be a dominator — but silently drops data-plane traffic per its policy.
pub struct MuteNode {
    inner: ByzcastNode,
    policy: MutePolicy,
    /// Frames suppressed so far (diagnostic).
    pub suppressed: u64,
}

impl MuteNode {
    /// Wraps `inner`, forcing it to advertise dominator status.
    pub fn new(mut inner: ByzcastNode, policy: MutePolicy) -> Self {
        inner.set_overlay_protocol(Box::new(AlwaysDominator));
        MuteNode {
            inner,
            policy,
            suppressed: 0,
        }
    }

    /// The wrapped (correct-protocol) node.
    pub fn inner(&self) -> &ByzcastNode {
        &self.inner
    }

    /// Applies the policy to one outgoing frame: pass it through, rewrite it
    /// (strip gossip entries, keep the piggybacked beacon), or drop it.
    fn filter(&self, msg: WireMsg) -> Option<WireMsg> {
        match self.policy {
            MutePolicy::DropData => match msg {
                WireMsg::Data(_) | WireMsg::Request(_) | WireMsg::FindMissing(_) => None,
                other => Some(other),
            },
            MutePolicy::DropDataAndGossip => match msg {
                WireMsg::Beacon(_) => Some(msg),
                // Keep claiming overlay membership, but stop advertising
                // the messages it refuses to serve.
                WireMsg::Gossip(g) if g.beacon.is_some() => {
                    Some(WireMsg::Gossip(byzcast_core::message::GossipMsg {
                        entries: vec![],
                        beacon: g.beacon,
                    }))
                }
                _ => None,
            },
            MutePolicy::DropEverything => None,
        }
    }

    fn relay(&mut self, ctx: &mut Context<'_, WireMsg>, actions: Vec<Action<WireMsg>>) {
        for a in actions {
            match a {
                Action::Send(m) => match self.filter(m) {
                    Some(kept) => ctx.send(kept),
                    None => self.suppressed += 1,
                },
                other => emit(ctx, other),
            }
        }
    }
}

impl Protocol for MuteNode {
    type Msg = WireMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, WireMsg>) {
        let ((), actions) = capture(ctx, |sub| self.inner.on_start(sub));
        self.relay(ctx, actions);
    }
    fn on_packet(&mut self, ctx: &mut Context<'_, WireMsg>, from: NodeId, msg: &WireMsg) {
        let ((), actions) = capture(ctx, |sub| self.inner.on_packet(sub, from, msg));
        self.relay(ctx, actions);
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, WireMsg>, timer: TimerKey) {
        let ((), actions) = capture(ctx, |sub| self.inner.on_timer(sub, timer));
        self.relay(ctx, actions);
    }
    fn on_app_broadcast(&mut self, ctx: &mut Context<'_, WireMsg>, payload: AppPayload) {
        let ((), actions) = capture(ctx, |sub| self.inner.on_app_broadcast(sub, payload));
        self.relay(ctx, actions);
    }
}

/// Generic crash-like mute: wraps *any* protocol and suppresses every
/// transmission (receptions and deliveries still happen). Works against the
/// baselines, whose message types differ from byzcast's.
pub struct SilentNode<P: Protocol> {
    inner: P,
    /// Frames suppressed so far (diagnostic).
    pub suppressed: u64,
}

impl<P: Protocol> SilentNode<P> {
    /// Wraps `inner`.
    pub fn new(inner: P) -> Self {
        SilentNode {
            inner,
            suppressed: 0,
        }
    }

    /// The wrapped node.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    fn relay(&mut self, ctx: &mut Context<'_, P::Msg>, actions: Vec<Action<P::Msg>>) {
        for a in actions {
            match a {
                Action::Send(_) => self.suppressed += 1,
                other => emit(ctx, other),
            }
        }
    }
}

impl<P: Protocol> Protocol for SilentNode<P> {
    type Msg = P::Msg;

    fn on_start(&mut self, ctx: &mut Context<'_, P::Msg>) {
        let ((), actions) = capture(ctx, |sub| self.inner.on_start(sub));
        self.relay(ctx, actions);
    }
    fn on_packet(&mut self, ctx: &mut Context<'_, P::Msg>, from: NodeId, msg: &P::Msg) {
        let ((), actions) = capture(ctx, |sub| self.inner.on_packet(sub, from, msg));
        self.relay(ctx, actions);
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, P::Msg>, timer: TimerKey) {
        let ((), actions) = capture(ctx, |sub| self.inner.on_timer(sub, timer));
        self.relay(ctx, actions);
    }
    fn on_app_broadcast(&mut self, ctx: &mut Context<'_, P::Msg>, payload: AppPayload) {
        let ((), actions) = capture(ctx, |sub| self.inner.on_app_broadcast(sub, payload));
        self.relay(ctx, actions);
    }
}

/// A forger: forwards protocol traffic but corrupts the payload of every
/// data message it relays. Receivers detect the broken originator signature
/// and suspect the forger.
pub struct ForgerNode {
    inner: ByzcastNode,
    /// Frames tampered so far (diagnostic).
    pub tampered: u64,
}

impl ForgerNode {
    /// Wraps `inner`.
    pub fn new(inner: ByzcastNode) -> Self {
        ForgerNode { inner, tampered: 0 }
    }

    /// The wrapped node.
    pub fn inner(&self) -> &ByzcastNode {
        &self.inner
    }

    fn relay(&mut self, ctx: &mut Context<'_, WireMsg>, actions: Vec<Action<WireMsg>>) {
        let me = ctx.node_id();
        for a in actions {
            match a {
                Action::Send(WireMsg::Data(mut m)) if m.id.origin != me => {
                    // Tamper with relayed payloads ("messages with false
                    // information"); own messages stay valid to avoid
                    // instant self-incrimination.
                    m.payload_id ^= 0xDEAD_BEEF;
                    self.tampered += 1;
                    ctx.send(WireMsg::Data(m));
                }
                other => emit(ctx, other),
            }
        }
    }
}

impl Protocol for ForgerNode {
    type Msg = WireMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, WireMsg>) {
        let ((), actions) = capture(ctx, |sub| self.inner.on_start(sub));
        self.relay(ctx, actions);
    }
    fn on_packet(&mut self, ctx: &mut Context<'_, WireMsg>, from: NodeId, msg: &WireMsg) {
        let ((), actions) = capture(ctx, |sub| self.inner.on_packet(sub, from, msg));
        self.relay(ctx, actions);
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, WireMsg>, timer: TimerKey) {
        let ((), actions) = capture(ctx, |sub| self.inner.on_timer(sub, timer));
        self.relay(ctx, actions);
    }
    fn on_app_broadcast(&mut self, ctx: &mut Context<'_, WireMsg>, payload: AppPayload) {
        let ((), actions) = capture(ctx, |sub| self.inner.on_app_broadcast(sub, payload));
        self.relay(ctx, actions);
    }
}

/// Timer key reserved for the verbose adversary's spam tick (outside the
/// range used by the wrapped protocol).
const SPAM_TIMER: TimerKey = TimerKey(0x5_0000);

/// A verbose node: speaks the protocol correctly but additionally floods
/// duplicate `REQUEST_MSG`s for messages it already possesses — the
/// "too many messages … may cause other nodes to react with messages of
/// their own" overload attack.
pub struct VerboseNode {
    inner: ByzcastNode,
    spam_period: SimDuration,
    spam_per_tick: usize,
    /// Spam requests sent (diagnostic).
    pub spammed: u64,
}

impl VerboseNode {
    /// Wraps `inner`, spamming `spam_per_tick` requests every `spam_period`.
    pub fn new(inner: ByzcastNode, spam_period: SimDuration, spam_per_tick: usize) -> Self {
        VerboseNode {
            inner,
            spam_period,
            spam_per_tick,
            spammed: 0,
        }
    }

    /// The wrapped node.
    pub fn inner(&self) -> &ByzcastNode {
        &self.inner
    }

    fn spam(&mut self, ctx: &mut Context<'_, WireMsg>) {
        // Request messages we already have — guaranteed-pointless traffic
        // that forces overlay neighbours to respond with full data frames.
        let entries: Vec<_> = self
            .inner
            .store()
            .iter()
            .take(self.spam_per_tick)
            .map(|s| s.msg.gossip_entry())
            .collect();
        for entry in entries {
            ctx.send(WireMsg::Request(byzcast_core::message::RequestMsg {
                entry,
                target: NodeId(0),
            }));
            self.spammed += 1;
        }
        ctx.set_timer_after(self.spam_period, SPAM_TIMER);
    }
}

impl Protocol for VerboseNode {
    type Msg = WireMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, WireMsg>) {
        self.inner.on_start(ctx);
        ctx.set_timer_after(self.spam_period, SPAM_TIMER);
    }
    fn on_packet(&mut self, ctx: &mut Context<'_, WireMsg>, from: NodeId, msg: &WireMsg) {
        self.inner.on_packet(ctx, from, msg);
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, WireMsg>, timer: TimerKey) {
        if timer == SPAM_TIMER {
            self.spam(ctx);
        } else {
            self.inner.on_timer(ctx, timer);
        }
    }
    fn on_app_broadcast(&mut self, ctx: &mut Context<'_, WireMsg>, payload: AppPayload) {
        self.inner.on_app_broadcast(ctx, payload);
    }
}

/// A selective forwarder: a correct overlay citizen except that it censors
/// data messages from the victim originators.
pub struct SelectiveForwarder {
    inner: ByzcastNode,
    victims: Vec<NodeId>,
    /// Frames censored so far (diagnostic).
    pub censored: u64,
}

impl SelectiveForwarder {
    /// Wraps `inner`, censoring messages originated by `victims`.
    pub fn new(mut inner: ByzcastNode, victims: Vec<NodeId>) -> Self {
        inner.set_overlay_protocol(Box::new(AlwaysDominator));
        SelectiveForwarder {
            inner,
            victims,
            censored: 0,
        }
    }

    /// The wrapped node.
    pub fn inner(&self) -> &ByzcastNode {
        &self.inner
    }

    fn relay(&mut self, ctx: &mut Context<'_, WireMsg>, actions: Vec<Action<WireMsg>>) {
        for a in actions {
            match a {
                Action::Send(WireMsg::Data(m)) if self.victims.contains(&m.id.origin) => {
                    self.censored += 1;
                }
                other => emit(ctx, other),
            }
        }
    }
}

impl Protocol for SelectiveForwarder {
    type Msg = WireMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, WireMsg>) {
        let ((), actions) = capture(ctx, |sub| self.inner.on_start(sub));
        self.relay(ctx, actions);
    }
    fn on_packet(&mut self, ctx: &mut Context<'_, WireMsg>, from: NodeId, msg: &WireMsg) {
        let ((), actions) = capture(ctx, |sub| self.inner.on_packet(sub, from, msg));
        self.relay(ctx, actions);
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, WireMsg>, timer: TimerKey) {
        let ((), actions) = capture(ctx, |sub| self.inner.on_timer(sub, timer));
        self.relay(ctx, actions);
    }
    fn on_app_broadcast(&mut self, ctx: &mut Context<'_, WireMsg>, payload: AppPayload) {
        let ((), actions) = capture(ctx, |sub| self.inner.on_app_broadcast(sub, payload));
        self.relay(ctx, actions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzcast_core::message::DataMsg;
    use byzcast_core::ByzcastConfig;
    use byzcast_crypto::{KeyRegistry, SignerId, SimScheme, Verifier};
    use byzcast_sim::{SimRng, SimTime};
    use std::sync::Arc;

    fn byz(id: u32, reg: &KeyRegistry<SimScheme>) -> ByzcastNode {
        let verifier: Arc<dyn Verifier + Send + Sync> = Arc::new(reg.verifier());
        ByzcastNode::new(
            NodeId(id),
            ByzcastConfig::default(),
            Box::new(reg.signer(SignerId(id))),
            verifier,
        )
    }

    fn drive<P: Protocol>(
        p: &mut P,
        id: u32,
        f: impl FnOnce(&mut P, &mut Context<'_, P::Msg>),
    ) -> Vec<Action<P::Msg>> {
        let mut rng = SimRng::new(0);
        let mut actions = Vec::new();
        {
            let mut ctx = Context::new(NodeId(id), SimTime::from_secs(1), &mut rng, &mut actions);
            f(p, &mut ctx);
        }
        actions
    }

    fn sends<M>(actions: &[Action<M>]) -> Vec<&M> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Send(m) => Some(m),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn mute_node_drops_data_but_keeps_beacons_and_gossip() {
        let reg = KeyRegistry::generate(1, 8);
        let mut mute = MuteNode::new(byz(1, &reg), MutePolicy::DropData);
        // The first gossip tick carries the (lying) dominator beacon and
        // flips the inner node's role.
        let actions = drive(&mut mute, 1, |p, ctx| p.on_timer(ctx, TimerKey(1)));
        match sends(&actions).first() {
            Some(WireMsg::Gossip(g)) => {
                assert_eq!(g.beacon.as_ref().unwrap().role, OverlayRole::Dominator)
            }
            other => panic!("expected gossip+beacon, got {other:?}"),
        }
        let m = DataMsg::sign(&reg.signer(SignerId(0)), 1, 5, 64);
        // It receives and delivers, but forwards nothing.
        let actions = drive(&mut mute, 1, |p, ctx| {
            p.on_packet(ctx, NodeId(0), &WireMsg::Data(m))
        });
        assert!(actions.iter().any(|a| matches!(a, Action::Deliver { .. })));
        assert!(sends(&actions)
            .iter()
            .all(|m| !matches!(m, WireMsg::Data(_))));
        assert!(mute.suppressed >= 1);
    }

    #[test]
    fn fully_mute_policy_keeps_only_beacons() {
        let reg = KeyRegistry::generate(1, 8);
        let mut mute = MuteNode::new(byz(1, &reg), MutePolicy::DropDataAndGossip);
        let m = DataMsg::sign(&reg.signer(SignerId(0)), 1, 5, 64);
        drive(&mut mute, 1, |p, ctx| {
            p.on_packet(ctx, NodeId(0), &WireMsg::Data(m))
        });
        // Gossip tick: entries are stripped, the beacon claim survives.
        let actions = drive(&mut mute, 1, |p, ctx| p.on_timer(ctx, TimerKey(1)));
        for s in sends(&actions) {
            match s {
                WireMsg::Gossip(g) => {
                    assert!(g.entries.is_empty(), "entries leaked: {g:?}");
                    assert!(g.beacon.is_some());
                }
                other => panic!("unexpected frame {other:?}"),
            }
        }
        assert!(
            mute.suppressed == 0,
            "beacon-bearing gossip was rewritten, not dropped"
        );
    }

    #[test]
    fn silent_node_sends_nothing_at_all() {
        let reg = KeyRegistry::generate(1, 8);
        let mut silent = SilentNode::new(byz(1, &reg));
        let m = DataMsg::sign(&reg.signer(SignerId(0)), 1, 5, 64);
        let actions = drive(&mut silent, 1, |p, ctx| {
            p.on_packet(ctx, NodeId(0), &WireMsg::Data(m))
        });
        assert!(sends(&actions).is_empty());
        // Beacons are suppressed too.
        let actions = drive(&mut silent, 1, |p, ctx| p.on_timer(ctx, TimerKey(1)));
        assert!(sends(&actions).is_empty());
        assert!(silent.suppressed >= 1);
        assert!(actions.iter().any(|a| matches!(a, Action::SetTimer { .. })));
    }

    #[test]
    fn forger_corrupts_relayed_data_only() {
        let reg = KeyRegistry::generate(1, 8);
        let mut inner = byz(1, &reg);
        inner.set_overlay_protocol(Box::new(AlwaysDominator));
        // Promote to overlay so it forwards: run one beacon tick first.
        let mut forger = ForgerNode::new(inner);
        drive(&mut forger, 1, |p, ctx| p.on_timer(ctx, TimerKey(1)));
        let m = DataMsg::sign(&reg.signer(SignerId(0)), 1, 5, 64);
        let actions = drive(&mut forger, 1, |p, ctx| {
            p.on_packet(ctx, NodeId(0), &WireMsg::Data(m))
        });
        let datas: Vec<_> = sends(&actions)
            .into_iter()
            .filter_map(|m| match m {
                WireMsg::Data(d) => Some(*d),
                _ => None,
            })
            .collect();
        assert_eq!(datas.len(), 1);
        let v = reg.verifier();
        assert!(!datas[0].verify(&v), "forged frame must not verify");
        assert_eq!(forger.tampered, 1);
        // Its own broadcast stays valid.
        let actions = drive(&mut forger, 1, |p, ctx| {
            p.on_app_broadcast(
                ctx,
                byzcast_sim::AppPayload {
                    id: 7,
                    size_bytes: 10,
                },
            )
        });
        let own: Vec<_> = sends(&actions)
            .into_iter()
            .filter_map(|m| match m {
                WireMsg::Data(d) => Some(*d),
                _ => None,
            })
            .collect();
        assert!(own[0].verify(&v));
    }

    #[test]
    fn verbose_node_spams_requests_for_messages_it_has() {
        let reg = KeyRegistry::generate(1, 8);
        let mut verbose = VerboseNode::new(byz(1, &reg), SimDuration::from_millis(100), 3);
        let m = DataMsg::sign(&reg.signer(SignerId(0)), 1, 5, 64);
        drive(&mut verbose, 1, |p, ctx| {
            p.on_packet(ctx, NodeId(0), &WireMsg::Data(m))
        });
        let actions = drive(&mut verbose, 1, |p, ctx| p.on_timer(ctx, SPAM_TIMER));
        let reqs = sends(&actions)
            .iter()
            .filter(|m| matches!(m, WireMsg::Request(_)))
            .count();
        assert_eq!(reqs, 1); // has one message so far
        assert_eq!(verbose.spammed, 1);
    }

    #[test]
    fn selective_forwarder_censors_victims_only() {
        let reg = KeyRegistry::generate(1, 8);
        let mut sf = SelectiveForwarder::new(byz(1, &reg), vec![NodeId(0)]);
        drive(&mut sf, 1, |p, ctx| p.on_timer(ctx, TimerKey(1))); // become overlay
        let victim_msg = DataMsg::sign(&reg.signer(SignerId(0)), 1, 5, 64);
        let ok_msg = DataMsg::sign(&reg.signer(SignerId(2)), 1, 6, 64);
        let a1 = drive(&mut sf, 1, |p, ctx| {
            p.on_packet(ctx, NodeId(0), &WireMsg::Data(victim_msg))
        });
        assert!(sends(&a1).iter().all(|m| !matches!(m, WireMsg::Data(_))));
        assert_eq!(sf.censored, 1);
        let a2 = drive(&mut sf, 1, |p, ctx| {
            p.on_packet(ctx, NodeId(2), &WireMsg::Data(ok_msg))
        });
        assert!(sends(&a2).iter().any(|m| matches!(m, WireMsg::Data(_))));
    }
}
