//! Standalone Byzantine protocols (not wrapping a correct node).

use std::collections::BTreeMap;

use byzcast_core::message::{BeaconMsg, DataMsg, GossipEntry, GossipMsg, MessageId, WireMsg};
use byzcast_crypto::{Signature, Signer};
use byzcast_overlay::OverlayRole;
use byzcast_sim::{AppPayload, Context, NodeId, Protocol, SimDuration, SimTime, TimerKey};

const GOSSIP_TIMER: TimerKey = TimerKey(0x6_0001);
const BEACON_TIMER: TimerKey = TimerKey(0x6_0002);
const INJECT_TIMER: TimerKey = TimerKey(0x6_0003);
const FLOOD_TIMER: TimerKey = TimerKey(0x6_0004);
const REPLAY_TIMER: TimerKey = TimerKey(0x6_0005);
const GRIND_TIMER: TimerKey = TimerKey(0x6_0006);

/// The gossip liar: re-gossips (valid, overheard) entries for messages it
/// does not hold and never answers the resulting requests.
///
/// §3.2.2: a node "only gossips about messages it has already received" —
/// the liar violates exactly this, and "if q gossips about messages that do
/// not exist or q does not want to supply them, it will be suspected" (the
/// MUTE expectation registered at line 28 fires).
pub struct GossipLiarNode {
    signer: Box<dyn Signer + Send>,
    gossip_period: SimDuration,
    /// Valid entries overheard from others (it cannot forge new ones).
    overheard: BTreeMap<MessageId, GossipEntry>,
    /// Lying gossip packets sent (diagnostic).
    pub lies_sent: u64,
    /// Requests it pointedly ignored (diagnostic).
    pub requests_ignored: u64,
}

impl GossipLiarNode {
    /// Creates a liar gossiping every `gossip_period`.
    pub fn new(signer: Box<dyn Signer + Send>, gossip_period: SimDuration) -> Self {
        GossipLiarNode {
            signer,
            gossip_period,
            overheard: BTreeMap::new(),
            lies_sent: 0,
            requests_ignored: 0,
        }
    }
}

impl Protocol for GossipLiarNode {
    type Msg = WireMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, WireMsg>) {
        ctx.set_timer_after(self.gossip_period, GOSSIP_TIMER);
        ctx.set_timer_after(self.gossip_period, BEACON_TIMER);
    }

    fn on_packet(&mut self, ctx: &mut Context<'_, WireMsg>, _from: NodeId, msg: &WireMsg) {
        match msg {
            // Collect entries to lie about — from gossips AND data messages
            // (whose bodies it deliberately does not retain).
            WireMsg::Gossip(g) => {
                for e in &g.entries {
                    self.overheard.insert(e.id, *e);
                }
            }
            WireMsg::Data(m) => {
                self.overheard.insert(m.id, m.gossip_entry());
                ctx.deliver(m.id.origin, m.payload_id); // it still reads them
            }
            WireMsg::Request(_) | WireMsg::FindMissing(_) => {
                self.requests_ignored += 1; // never supplies anything
            }
            WireMsg::Beacon(_) => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, WireMsg>, timer: TimerKey) {
        match timer {
            GOSSIP_TIMER => {
                let entries: Vec<GossipEntry> = self.overheard.values().copied().take(40).collect();
                if !entries.is_empty() {
                    ctx.send(WireMsg::Gossip(GossipMsg::of_entries(entries)));
                    self.lies_sent += 1;
                }
                ctx.set_timer_after(self.gossip_period, GOSSIP_TIMER);
            }
            BEACON_TIMER => {
                // Claim to be a dominator with no neighbours to report.
                ctx.send(WireMsg::Beacon(BeaconMsg::sign(
                    self.signer.as_ref(),
                    OverlayRole::Dominator,
                    vec![],
                    vec![],
                    vec![],
                )));
                ctx.set_timer_after(self.gossip_period, BEACON_TIMER);
            }
            _ => {}
        }
    }

    fn on_app_broadcast(&mut self, _ctx: &mut Context<'_, WireMsg>, _payload: AppPayload) {
        // The liar never originates (it would have to supply those).
    }
}

/// The impersonator: periodically injects data messages claiming other
/// originators (with garbage signatures, since it cannot forge) and beacons
/// naming other senders. All of it is rejected by receivers; the interesting
/// measurement is that it achieves nothing but getting itself suspected.
pub struct ImpersonatorNode {
    me: NodeId,
    victim: NodeId,
    inject_period: SimDuration,
    seq: u64,
    /// Forged frames injected (diagnostic).
    pub injected: u64,
}

impl ImpersonatorNode {
    /// Creates an impersonator framing `victim` every `inject_period`.
    pub fn new(me: NodeId, victim: NodeId, inject_period: SimDuration) -> Self {
        ImpersonatorNode {
            me,
            victim,
            inject_period,
            seq: 0,
            injected: 0,
        }
    }
}

impl Protocol for ImpersonatorNode {
    type Msg = WireMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, WireMsg>) {
        ctx.set_timer_after(self.inject_period, INJECT_TIMER);
    }

    fn on_packet(&mut self, _ctx: &mut Context<'_, WireMsg>, _from: NodeId, _msg: &WireMsg) {}

    fn on_timer(&mut self, ctx: &mut Context<'_, WireMsg>, timer: TimerKey) {
        if timer != INJECT_TIMER {
            return;
        }
        self.seq += 1;
        // A data message "from" the victim with an unforgeable — therefore
        // absent — signature.
        let forged = DataMsg {
            id: crate::standalone::MessageId::new(self.victim, 1_000_000 + self.seq),
            payload_id: 0xBAD0 + self.seq,
            payload_len: 64,
            msg_sig: Signature::zero(),
            id_sig: Signature::zero(),
            ttl: 1,
        };
        ctx.send(WireMsg::Data(forged));
        // A beacon claiming to be the victim.
        let fake_beacon = BeaconMsg {
            sender: self.victim,
            role: OverlayRole::Dominator,
            marked: true,
            neighbors: vec![self.me],
            dominator_neighbors: vec![],
            suspects: vec![],
            sig: Signature::zero(),
        };
        ctx.send(WireMsg::Beacon(fake_beacon));
        self.injected += 2;
        ctx.set_timer_after(self.inject_period, INJECT_TIMER);
    }

    fn on_app_broadcast(&mut self, _ctx: &mut Context<'_, WireMsg>, _payload: AppPayload) {}
}

/// The flooder: a *registered* node (its signatures verify) that injects
/// unique signed garbage messages at a configurable rate. Every frame passes
/// both originator-signature checks, so an ungoverned receiver buffers each
/// body until the purge horizon and gossips about it — memory and bandwidth
/// grow linearly with the attack rate, the "most adverse impact" exhaustion
/// class the resource-governance envelope is built to stop.
pub struct FlooderNode {
    signer: Box<dyn Signer + Send>,
    flood_period: SimDuration,
    per_tick: u32,
    payload_len: u32,
    seq: u64,
    /// Garbage messages injected (diagnostic).
    pub flooded: u64,
}

impl FlooderNode {
    /// Creates a flooder sending `per_tick` unique signed messages of
    /// `payload_len` bytes every `flood_period`.
    pub fn new(
        signer: Box<dyn Signer + Send>,
        flood_period: SimDuration,
        per_tick: u32,
        payload_len: u32,
    ) -> Self {
        FlooderNode {
            signer,
            flood_period,
            per_tick,
            payload_len,
            seq: 0,
            flooded: 0,
        }
    }
}

impl Protocol for FlooderNode {
    type Msg = WireMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, WireMsg>) {
        ctx.set_timer_after(self.flood_period, FLOOD_TIMER);
    }

    fn on_packet(&mut self, _ctx: &mut Context<'_, WireMsg>, _from: NodeId, _msg: &WireMsg) {
        // Pure source: it ignores the network entirely.
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, WireMsg>, timer: TimerKey) {
        if timer != FLOOD_TIMER {
            return;
        }
        for _ in 0..self.per_tick {
            self.seq += 1;
            // Unique ids and payloads: dedup and verification caches never
            // short-circuit the cost.
            let m = DataMsg::sign(
                self.signer.as_ref(),
                self.seq,
                0xF100_0000 + self.seq,
                self.payload_len,
            );
            ctx.send(WireMsg::Data(m));
            self.flooded += 1;
        }
        ctx.set_timer_after(self.flood_period, FLOOD_TIMER);
    }

    fn on_app_broadcast(&mut self, _ctx: &mut Context<'_, WireMsg>, _payload: AppPayload) {}
}

/// The replayer: captures valid data messages off the air and re-injects
/// them unchanged after `replay_delay`. The frames are perfectly signed —
/// the only defence is the receiver's seen-id memory, so a store that
/// expires seen-ids after its `seen_hold` horizon re-delivers the replay as
/// a fresh message (a no-duplication violation).
pub struct ReplayerNode {
    replay_delay: SimDuration,
    check_period: SimDuration,
    /// Captured messages by id, with capture time; replayed once each.
    captured: BTreeMap<MessageId, (DataMsg, SimTime)>,
    /// Old frames re-injected (diagnostic).
    pub replayed: u64,
}

impl ReplayerNode {
    /// Creates a replayer re-injecting each overheard message once,
    /// `replay_delay` after capturing it (checked every `check_period`).
    pub fn new(replay_delay: SimDuration, check_period: SimDuration) -> Self {
        ReplayerNode {
            replay_delay,
            check_period,
            captured: BTreeMap::new(),
            replayed: 0,
        }
    }
}

impl Protocol for ReplayerNode {
    type Msg = WireMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, WireMsg>) {
        ctx.set_timer_after(self.check_period, REPLAY_TIMER);
    }

    fn on_packet(&mut self, ctx: &mut Context<'_, WireMsg>, _from: NodeId, msg: &WireMsg) {
        if let WireMsg::Data(m) = msg {
            let now = ctx.now();
            self.captured.entry(m.id).or_insert((m.with_ttl(1), now));
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, WireMsg>, timer: TimerKey) {
        if timer != REPLAY_TIMER {
            return;
        }
        let now = ctx.now();
        let due: Vec<MessageId> = self
            .captured
            .iter()
            .filter(|(_, (_, at))| now.saturating_since(*at) >= self.replay_delay)
            .map(|(&id, _)| id)
            .collect();
        for id in due {
            let (m, _) = self.captured.remove(&id).expect("just listed");
            ctx.send(WireMsg::Data(m));
            self.replayed += 1;
        }
        ctx.set_timer_after(self.check_period, REPLAY_TIMER);
    }

    fn on_app_broadcast(&mut self, _ctx: &mut Context<'_, WireMsg>, _payload: AppPayload) {}
}

/// The signature grinder: valid-*looking* data frames with garbage
/// signatures, each with a unique id and payload so neither seen-id dedup
/// nor the verification cache short-circuits — every frame costs the
/// receiver a full (failing) signature verification. Pure CPU exhaustion:
/// nothing is ever stored, but an ungoverned verifier burns cycles linearly
/// with the grind rate.
pub struct SigGrinderNode {
    me: NodeId,
    grind_period: SimDuration,
    per_tick: u32,
    seq: u64,
    /// Ill-signed frames injected (diagnostic).
    pub ground: u64,
}

impl SigGrinderNode {
    /// Creates a grinder sending `per_tick` ill-signed frames every
    /// `grind_period`.
    pub fn new(me: NodeId, grind_period: SimDuration, per_tick: u32) -> Self {
        SigGrinderNode {
            me,
            grind_period,
            per_tick,
            seq: 0,
            ground: 0,
        }
    }
}

impl Protocol for SigGrinderNode {
    type Msg = WireMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, WireMsg>) {
        ctx.set_timer_after(self.grind_period, GRIND_TIMER);
    }

    fn on_packet(&mut self, _ctx: &mut Context<'_, WireMsg>, _from: NodeId, _msg: &WireMsg) {}

    fn on_timer(&mut self, ctx: &mut Context<'_, WireMsg>, timer: TimerKey) {
        if timer != GRIND_TIMER {
            return;
        }
        for _ in 0..self.per_tick {
            self.seq += 1;
            // Honest origin, unforgeable — therefore absent — signatures:
            // the receiver must run the verifier to find out.
            let m = DataMsg {
                id: MessageId::new(self.me, self.seq),
                payload_id: 0x51_6000_0000 + self.seq,
                payload_len: 256,
                msg_sig: Signature::zero(),
                id_sig: Signature::zero(),
                ttl: 1,
            };
            ctx.send(WireMsg::Data(m));
            self.ground += 1;
        }
        ctx.set_timer_after(self.grind_period, GRIND_TIMER);
    }

    fn on_app_broadcast(&mut self, _ctx: &mut Context<'_, WireMsg>, _payload: AppPayload) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzcast_crypto::{KeyRegistry, SignerId, SimScheme};
    use byzcast_sim::node::Action;
    use byzcast_sim::{SimRng, SimTime};

    fn drive<P: Protocol>(
        p: &mut P,
        id: u32,
        f: impl FnOnce(&mut P, &mut Context<'_, P::Msg>),
    ) -> Vec<Action<P::Msg>> {
        let mut rng = SimRng::new(0);
        let mut actions = Vec::new();
        {
            let mut ctx = Context::new(NodeId(id), SimTime::from_secs(1), &mut rng, &mut actions);
            f(p, &mut ctx);
        }
        actions
    }

    fn sends(actions: &[Action<WireMsg>]) -> Vec<&WireMsg> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Send(m) => Some(m),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn liar_gossips_overheard_entries_without_having_messages() {
        let reg: KeyRegistry<SimScheme> = KeyRegistry::generate(1, 4);
        let mut liar = GossipLiarNode::new(
            Box::new(reg.signer(SignerId(3))),
            SimDuration::from_millis(500),
        );
        let m = DataMsg::sign(&reg.signer(SignerId(0)), 1, 5, 64);
        // Hears only the gossip, never the message.
        drive(&mut liar, 3, |p, ctx| {
            p.on_packet(
                ctx,
                NodeId(0),
                &WireMsg::Gossip(GossipMsg::of_entries(vec![m.gossip_entry()])),
            )
        });
        let actions = drive(&mut liar, 3, |p, ctx| p.on_timer(ctx, GOSSIP_TIMER));
        match sends(&actions).first() {
            Some(WireMsg::Gossip(g)) => {
                assert_eq!(g.entries.len(), 1);
                // The lied-about entry is still *valid* (originator-signed).
                assert!(g.entries[0].verify(&reg.verifier()));
            }
            other => panic!("expected gossip, got {other:?}"),
        }
        assert_eq!(liar.lies_sent, 1);
        // And it ignores the resulting request.
        let req = byzcast_core::message::RequestMsg {
            entry: m.gossip_entry(),
            target: NodeId(3),
        };
        let actions = drive(&mut liar, 3, |p, ctx| {
            p.on_packet(ctx, NodeId(1), &WireMsg::Request(req))
        });
        assert!(sends(&actions).is_empty());
        assert_eq!(liar.requests_ignored, 1);
    }

    #[test]
    fn impersonator_frames_never_verify() {
        let reg: KeyRegistry<SimScheme> = KeyRegistry::generate(1, 4);
        let mut imp = ImpersonatorNode::new(NodeId(3), NodeId(0), SimDuration::from_secs(1));
        let actions = drive(&mut imp, 3, |p, ctx| p.on_timer(ctx, INJECT_TIMER));
        let s = sends(&actions);
        assert_eq!(s.len(), 2);
        let v = reg.verifier();
        match s[0] {
            WireMsg::Data(d) => {
                assert_eq!(d.id.origin, NodeId(0));
                assert!(!d.verify(&v));
            }
            other => panic!("unexpected {other:?}"),
        }
        match s[1] {
            WireMsg::Beacon(b) => {
                assert_eq!(b.sender, NodeId(0));
                assert!(!b.verify(&v));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(imp.injected, 2);
    }

    fn drive_at<P: Protocol>(
        p: &mut P,
        id: u32,
        at: SimTime,
        f: impl FnOnce(&mut P, &mut Context<'_, P::Msg>),
    ) -> Vec<Action<P::Msg>> {
        let mut rng = SimRng::new(0);
        let mut actions = Vec::new();
        {
            let mut ctx = Context::new(NodeId(id), at, &mut rng, &mut actions);
            f(p, &mut ctx);
        }
        actions
    }

    #[test]
    fn flooder_signs_unique_garbage_that_verifies() {
        let reg: KeyRegistry<SimScheme> = KeyRegistry::generate(1, 4);
        let mut flooder = FlooderNode::new(
            Box::new(reg.signer(SignerId(2))),
            SimDuration::from_millis(100),
            3,
            64,
        );
        let actions = drive(&mut flooder, 2, |p, ctx| p.on_timer(ctx, FLOOD_TIMER));
        let s = sends(&actions);
        assert_eq!(s.len(), 3);
        let v = reg.verifier();
        let mut ids = Vec::new();
        for m in &s {
            match m {
                WireMsg::Data(d) => {
                    // Properly signed by a registered key: the receiver
                    // cannot reject it cheaply.
                    assert!(d.verify(&v));
                    assert_eq!(d.id.origin, NodeId(2));
                    ids.push(d.id);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        ids.dedup();
        assert_eq!(ids.len(), 3, "every flood frame is unique");
        assert_eq!(flooder.flooded, 3);
    }

    #[test]
    fn replayer_reinjects_captured_frames_only_after_the_delay() {
        let reg: KeyRegistry<SimScheme> = KeyRegistry::generate(1, 4);
        let mut rep = ReplayerNode::new(SimDuration::from_secs(5), SimDuration::from_millis(500));
        let m = DataMsg::sign(&reg.signer(SignerId(0)), 7, 9, 64);
        drive(&mut rep, 3, |p, ctx| {
            p.on_packet(ctx, NodeId(0), &WireMsg::Data(m))
        });
        // Too early: nothing due yet.
        let actions = drive_at(&mut rep, 3, SimTime::from_secs(2), |p, ctx| {
            p.on_timer(ctx, REPLAY_TIMER)
        });
        assert!(sends(&actions).is_empty());
        // After the delay the captured frame comes back, still valid.
        let actions = drive_at(&mut rep, 3, SimTime::from_secs(7), |p, ctx| {
            p.on_timer(ctx, REPLAY_TIMER)
        });
        match sends(&actions).first() {
            Some(WireMsg::Data(d)) => {
                assert_eq!(d.id, m.id);
                assert!(d.verify(&reg.verifier()));
            }
            other => panic!("expected replayed data, got {other:?}"),
        }
        assert_eq!(rep.replayed, 1);
        // Each capture replays once.
        let actions = drive_at(&mut rep, 3, SimTime::from_secs(9), |p, ctx| {
            p.on_timer(ctx, REPLAY_TIMER)
        });
        assert!(sends(&actions).is_empty());
    }

    #[test]
    fn grinder_frames_are_unique_and_never_verify() {
        let reg: KeyRegistry<SimScheme> = KeyRegistry::generate(1, 4);
        let mut grinder = SigGrinderNode::new(NodeId(3), SimDuration::from_millis(100), 4);
        let actions = drive(&mut grinder, 3, |p, ctx| p.on_timer(ctx, GRIND_TIMER));
        let s = sends(&actions);
        assert_eq!(s.len(), 4);
        let v = reg.verifier();
        let mut ids = Vec::new();
        for m in &s {
            match m {
                WireMsg::Data(d) => {
                    assert!(!d.verify(&v), "grinder signatures must fail");
                    ids.push(d.id);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        ids.dedup();
        assert_eq!(ids.len(), 4, "unique ids defeat dedup and verdict caches");
        assert_eq!(grinder.ground, 4);
    }
}
