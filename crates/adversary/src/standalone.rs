//! Standalone Byzantine protocols (not wrapping a correct node).

use std::collections::BTreeMap;

use byzcast_core::message::{BeaconMsg, DataMsg, GossipEntry, GossipMsg, MessageId, WireMsg};
use byzcast_crypto::{Signature, Signer};
use byzcast_overlay::OverlayRole;
use byzcast_sim::{AppPayload, Context, NodeId, Protocol, SimDuration, TimerKey};

const GOSSIP_TIMER: TimerKey = TimerKey(0x6_0001);
const BEACON_TIMER: TimerKey = TimerKey(0x6_0002);
const INJECT_TIMER: TimerKey = TimerKey(0x6_0003);

/// The gossip liar: re-gossips (valid, overheard) entries for messages it
/// does not hold and never answers the resulting requests.
///
/// §3.2.2: a node "only gossips about messages it has already received" —
/// the liar violates exactly this, and "if q gossips about messages that do
/// not exist or q does not want to supply them, it will be suspected" (the
/// MUTE expectation registered at line 28 fires).
pub struct GossipLiarNode {
    signer: Box<dyn Signer + Send>,
    gossip_period: SimDuration,
    /// Valid entries overheard from others (it cannot forge new ones).
    overheard: BTreeMap<MessageId, GossipEntry>,
    /// Lying gossip packets sent (diagnostic).
    pub lies_sent: u64,
    /// Requests it pointedly ignored (diagnostic).
    pub requests_ignored: u64,
}

impl GossipLiarNode {
    /// Creates a liar gossiping every `gossip_period`.
    pub fn new(signer: Box<dyn Signer + Send>, gossip_period: SimDuration) -> Self {
        GossipLiarNode {
            signer,
            gossip_period,
            overheard: BTreeMap::new(),
            lies_sent: 0,
            requests_ignored: 0,
        }
    }
}

impl Protocol for GossipLiarNode {
    type Msg = WireMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, WireMsg>) {
        ctx.set_timer_after(self.gossip_period, GOSSIP_TIMER);
        ctx.set_timer_after(self.gossip_period, BEACON_TIMER);
    }

    fn on_packet(&mut self, ctx: &mut Context<'_, WireMsg>, _from: NodeId, msg: &WireMsg) {
        match msg {
            // Collect entries to lie about — from gossips AND data messages
            // (whose bodies it deliberately does not retain).
            WireMsg::Gossip(g) => {
                for e in &g.entries {
                    self.overheard.insert(e.id, *e);
                }
            }
            WireMsg::Data(m) => {
                self.overheard.insert(m.id, m.gossip_entry());
                ctx.deliver(m.id.origin, m.payload_id); // it still reads them
            }
            WireMsg::Request(_) | WireMsg::FindMissing(_) => {
                self.requests_ignored += 1; // never supplies anything
            }
            WireMsg::Beacon(_) => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, WireMsg>, timer: TimerKey) {
        match timer {
            GOSSIP_TIMER => {
                let entries: Vec<GossipEntry> = self.overheard.values().copied().take(40).collect();
                if !entries.is_empty() {
                    ctx.send(WireMsg::Gossip(GossipMsg::of_entries(entries)));
                    self.lies_sent += 1;
                }
                ctx.set_timer_after(self.gossip_period, GOSSIP_TIMER);
            }
            BEACON_TIMER => {
                // Claim to be a dominator with no neighbours to report.
                ctx.send(WireMsg::Beacon(BeaconMsg::sign(
                    self.signer.as_ref(),
                    OverlayRole::Dominator,
                    vec![],
                    vec![],
                    vec![],
                )));
                ctx.set_timer_after(self.gossip_period, BEACON_TIMER);
            }
            _ => {}
        }
    }

    fn on_app_broadcast(&mut self, _ctx: &mut Context<'_, WireMsg>, _payload: AppPayload) {
        // The liar never originates (it would have to supply those).
    }
}

/// The impersonator: periodically injects data messages claiming other
/// originators (with garbage signatures, since it cannot forge) and beacons
/// naming other senders. All of it is rejected by receivers; the interesting
/// measurement is that it achieves nothing but getting itself suspected.
pub struct ImpersonatorNode {
    me: NodeId,
    victim: NodeId,
    inject_period: SimDuration,
    seq: u64,
    /// Forged frames injected (diagnostic).
    pub injected: u64,
}

impl ImpersonatorNode {
    /// Creates an impersonator framing `victim` every `inject_period`.
    pub fn new(me: NodeId, victim: NodeId, inject_period: SimDuration) -> Self {
        ImpersonatorNode {
            me,
            victim,
            inject_period,
            seq: 0,
            injected: 0,
        }
    }
}

impl Protocol for ImpersonatorNode {
    type Msg = WireMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, WireMsg>) {
        ctx.set_timer_after(self.inject_period, INJECT_TIMER);
    }

    fn on_packet(&mut self, _ctx: &mut Context<'_, WireMsg>, _from: NodeId, _msg: &WireMsg) {}

    fn on_timer(&mut self, ctx: &mut Context<'_, WireMsg>, timer: TimerKey) {
        if timer != INJECT_TIMER {
            return;
        }
        self.seq += 1;
        // A data message "from" the victim with an unforgeable — therefore
        // absent — signature.
        let forged = DataMsg {
            id: crate::standalone::MessageId::new(self.victim, 1_000_000 + self.seq),
            payload_id: 0xBAD0 + self.seq,
            payload_len: 64,
            msg_sig: Signature::zero(),
            id_sig: Signature::zero(),
            ttl: 1,
        };
        ctx.send(WireMsg::Data(forged));
        // A beacon claiming to be the victim.
        let fake_beacon = BeaconMsg {
            sender: self.victim,
            role: OverlayRole::Dominator,
            marked: true,
            neighbors: vec![self.me],
            dominator_neighbors: vec![],
            suspects: vec![],
            sig: Signature::zero(),
        };
        ctx.send(WireMsg::Beacon(fake_beacon));
        self.injected += 2;
        ctx.set_timer_after(self.inject_period, INJECT_TIMER);
    }

    fn on_app_broadcast(&mut self, _ctx: &mut Context<'_, WireMsg>, _payload: AppPayload) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzcast_crypto::{KeyRegistry, SignerId, SimScheme};
    use byzcast_sim::node::Action;
    use byzcast_sim::{SimRng, SimTime};

    fn drive<P: Protocol>(
        p: &mut P,
        id: u32,
        f: impl FnOnce(&mut P, &mut Context<'_, P::Msg>),
    ) -> Vec<Action<P::Msg>> {
        let mut rng = SimRng::new(0);
        let mut actions = Vec::new();
        {
            let mut ctx = Context::new(NodeId(id), SimTime::from_secs(1), &mut rng, &mut actions);
            f(p, &mut ctx);
        }
        actions
    }

    fn sends(actions: &[Action<WireMsg>]) -> Vec<&WireMsg> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Send(m) => Some(m),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn liar_gossips_overheard_entries_without_having_messages() {
        let reg: KeyRegistry<SimScheme> = KeyRegistry::generate(1, 4);
        let mut liar = GossipLiarNode::new(
            Box::new(reg.signer(SignerId(3))),
            SimDuration::from_millis(500),
        );
        let m = DataMsg::sign(&reg.signer(SignerId(0)), 1, 5, 64);
        // Hears only the gossip, never the message.
        drive(&mut liar, 3, |p, ctx| {
            p.on_packet(
                ctx,
                NodeId(0),
                &WireMsg::Gossip(GossipMsg::of_entries(vec![m.gossip_entry()])),
            )
        });
        let actions = drive(&mut liar, 3, |p, ctx| p.on_timer(ctx, GOSSIP_TIMER));
        match sends(&actions).first() {
            Some(WireMsg::Gossip(g)) => {
                assert_eq!(g.entries.len(), 1);
                // The lied-about entry is still *valid* (originator-signed).
                assert!(g.entries[0].verify(&reg.verifier()));
            }
            other => panic!("expected gossip, got {other:?}"),
        }
        assert_eq!(liar.lies_sent, 1);
        // And it ignores the resulting request.
        let req = byzcast_core::message::RequestMsg {
            entry: m.gossip_entry(),
            target: NodeId(3),
        };
        let actions = drive(&mut liar, 3, |p, ctx| {
            p.on_packet(ctx, NodeId(1), &WireMsg::Request(req))
        });
        assert!(sends(&actions).is_empty());
        assert_eq!(liar.requests_ignored, 1);
    }

    #[test]
    fn impersonator_frames_never_verify() {
        let reg: KeyRegistry<SimScheme> = KeyRegistry::generate(1, 4);
        let mut imp = ImpersonatorNode::new(NodeId(3), NodeId(0), SimDuration::from_secs(1));
        let actions = drive(&mut imp, 3, |p, ctx| p.on_timer(ctx, INJECT_TIMER));
        let s = sends(&actions);
        assert_eq!(s.len(), 2);
        let v = reg.verifier();
        match s[0] {
            WireMsg::Data(d) => {
                assert_eq!(d.id.origin, NodeId(0));
                assert!(!d.verify(&v));
            }
            other => panic!("unexpected {other:?}"),
        }
        match s[1] {
            WireMsg::Beacon(b) => {
                assert_eq!(b.sender, NodeId(0));
                assert!(!b.verify(&v));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(imp.injected, 2);
    }
}
