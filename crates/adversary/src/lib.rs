//! # byzcast-adversary — Byzantine behaviour models
//!
//! The paper's fault model (§2.1): "Byzantine processes may fail to send
//! messages, send too many messages, send messages with false information, or
//! send messages with different data to different nodes" — but "a node cannot
//! impersonate another node", thanks to signatures.
//!
//! Each adversary here either *wraps* a correct `ByzcastNode` and perturbs
//! its outgoing actions (the strongest adversaries: they speak the protocol
//! perfectly except for the deviation), or is a standalone protocol:
//!
//! * [`MuteNode`] — runs the protocol but never forwards data (and optionally
//!   never gossips), while *claiming to be an overlay dominator* so correct
//!   neighbours defer to it. The attack the MUTE failure detector exists for,
//!   and the failure mode the paper's evaluation focuses on ("nodes
//!   experience mute failures, as these failures seem to have the most
//!   adverse impact on the protocol's performance").
//! * [`SilentNode`] — generic crash-like mute: drops every transmission of
//!   any wrapped protocol (used against the baselines too).
//! * [`ForgerNode`] — tampers with the payload of every forwarded data
//!   message ("send messages with false information"); signatures catch it.
//! * [`VerboseNode`] — floods duplicate `REQUEST_MSG`s for messages it
//!   already has; the VERBOSE failure detector exists for this.
//! * [`GossipLiarNode`] — gossips about messages it never supplies, the
//!   behaviour §3.2.2 calls out: "If q gossips about messages that do not
//!   exist or q does not want to supply them, it will be suspected."
//! * [`SelectiveForwarder`] — forwards everything except messages from
//!   victim originators (targeted censorship).
//! * [`ImpersonatorNode`] — injects data messages with forged originators
//!   and unsigned beacons; pure noise once signatures are checked.
//! * [`FlooderNode`] — a registered node injecting unique *validly signed*
//!   garbage at a configurable rate; pure memory/bandwidth exhaustion that
//!   only resource-bounded admission can stop.
//! * [`ReplayerNode`] — captures valid frames and re-injects them unchanged
//!   after a delay, probing the receiver's seen-id memory horizon.
//! * [`SigGrinderNode`] — unique valid-looking frames with garbage
//!   signatures; every one costs the receiver a full failing verification
//!   (CPU exhaustion).
//! * [`FlappingNode`] — a correct node whose Byzantine behaviour (mute or
//!   forging) is switched on and off mid-run by the fault plan's activation
//!   windows; the hardest case for the MUTE/TRUST detectors.
//! * [`SabotagedNode`] — a deliberately broken "correct" node (duplicate,
//!   phantom or dropped deliveries) used to prove the chaos oracles catch
//!   real protocol bugs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flapping;
pub mod sabotage;
pub mod standalone;
pub mod wrappers;

pub use flapping::{FlapBehavior, FlappingNode};
pub use sabotage::{SabotageKind, SabotagedNode};
pub use standalone::{FlooderNode, GossipLiarNode, ImpersonatorNode, ReplayerNode, SigGrinderNode};
pub use wrappers::{
    AlwaysDominator, ForgerNode, MuteNode, MutePolicy, SelectiveForwarder, SilentNode, VerboseNode,
};

use byzcast_sim::node::Action;
use byzcast_sim::{Context, Message};

/// Runs `f` against a sub-context and returns the actions it produced,
/// letting a wrapper inspect/filter/rewrite them before re-emitting.
pub fn capture<M: Message, R>(
    ctx: &mut Context<'_, M>,
    f: impl FnOnce(&mut Context<'_, M>) -> R,
) -> (R, Vec<Action<M>>) {
    let node = ctx.node_id();
    let now = ctx.now();
    let mut actions = Vec::new();
    let r = {
        let mut sub = Context::new(node, now, ctx.rng(), &mut actions);
        f(&mut sub)
    };
    (r, actions)
}

/// Re-emits a captured action into the real context.
pub fn emit<M: Message>(ctx: &mut Context<'_, M>, action: Action<M>) {
    match action {
        Action::Send(m) => ctx.send(m),
        Action::SetTimer { at, key } => ctx.set_timer_at(at, key),
        Action::CancelTimer(key) => ctx.cancel_timer(key),
        Action::Deliver { origin, payload_id } => ctx.deliver(origin, payload_id),
        Action::Note(text) => ctx.note(text),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzcast_sim::{NodeId, SimRng, SimTime};

    #[derive(Clone, Debug, PartialEq)]
    struct M(u32);
    impl Message for M {
        fn wire_size(&self) -> usize {
            4
        }
        fn kind(&self) -> &'static str {
            "m"
        }
    }

    #[test]
    fn capture_and_emit_round_trip() {
        let mut rng = SimRng::new(0);
        let mut outer: Vec<Action<M>> = Vec::new();
        let mut ctx = Context::new(NodeId(1), SimTime::from_secs(1), &mut rng, &mut outer);
        let ((), captured) = capture(&mut ctx, |sub| {
            sub.send(M(1));
            sub.deliver(NodeId(2), 9);
        });
        assert_eq!(captured.len(), 2);
        // Re-emit only the delivery.
        for a in captured {
            if matches!(a, Action::Deliver { .. }) {
                emit(&mut ctx, a);
            }
        }
        let _ = ctx;
        assert_eq!(outer.len(), 1);
        assert!(matches!(outer[0], Action::Deliver { .. }));
    }
}
