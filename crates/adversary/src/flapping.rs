//! A flapping adversary: a *correct* node that turns Byzantine mid-run and
//! possibly back, driven by the fault plan's `SetByzantine` events.
//!
//! This is the worst case for the MUTE/TRUST detectors: the node builds up
//! genuine trust while correct, then silently deviates inside an activation
//! window, then behaves again. Unlike [`crate::MuteNode`], a flapper does not
//! lie about overlay membership — outside its windows it is byte-for-byte
//! the shipped protocol.

use byzcast_core::message::WireMsg;
use byzcast_core::ByzcastNode;
use byzcast_sim::node::Action;
use byzcast_sim::{AppPayload, Context, NodeId, Protocol, TimerKey};

use crate::wrappers::MutePolicy;
use crate::{capture, emit};

/// What a [`FlappingNode`] does while its Byzantine window is active.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlapBehavior {
    /// Suppress outgoing frames per the policy (mute windows).
    Mute(MutePolicy),
    /// Corrupt the payload of relayed data messages (forging windows).
    Forger,
}

/// A correct node with fault-plan-driven Byzantine activation windows.
pub struct FlappingNode {
    inner: ByzcastNode,
    behavior: FlapBehavior,
    active: bool,
    /// Frames suppressed inside mute windows (diagnostic).
    pub suppressed: u64,
    /// Frames tampered inside forging windows (diagnostic).
    pub tampered: u64,
}

impl FlappingNode {
    /// Wraps `inner`; starts in the correct (inactive) state.
    pub fn new(inner: ByzcastNode, behavior: FlapBehavior) -> Self {
        FlappingNode {
            inner,
            behavior,
            active: false,
            suppressed: 0,
            tampered: 0,
        }
    }

    /// The wrapped (correct-protocol) node.
    pub fn inner(&self) -> &ByzcastNode {
        &self.inner
    }

    /// Whether a Byzantine window is currently active.
    pub fn is_active(&self) -> bool {
        self.active
    }

    fn mute_keeps(policy: MutePolicy, msg: &WireMsg) -> bool {
        match policy {
            MutePolicy::DropData => !matches!(
                msg,
                WireMsg::Data(_) | WireMsg::Request(_) | WireMsg::FindMissing(_)
            ),
            MutePolicy::DropDataAndGossip => matches!(msg, WireMsg::Beacon(_)),
            MutePolicy::DropEverything => false,
        }
    }

    fn relay(&mut self, ctx: &mut Context<'_, WireMsg>, actions: Vec<Action<WireMsg>>) {
        let me = ctx.node_id();
        for a in actions {
            if !self.active {
                emit(ctx, a);
                continue;
            }
            match (self.behavior, a) {
                (FlapBehavior::Mute(policy), Action::Send(m)) => {
                    if Self::mute_keeps(policy, &m) {
                        ctx.send(m);
                    } else {
                        self.suppressed += 1;
                    }
                }
                (FlapBehavior::Forger, Action::Send(WireMsg::Data(mut m))) if m.id.origin != me => {
                    m.payload_id ^= 0xDEAD_BEEF;
                    self.tampered += 1;
                    ctx.send(WireMsg::Data(m));
                }
                (_, other) => emit(ctx, other),
            }
        }
    }
}

impl Protocol for FlappingNode {
    type Msg = WireMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, WireMsg>) {
        let ((), actions) = capture(ctx, |sub| self.inner.on_start(sub));
        self.relay(ctx, actions);
    }
    fn on_packet(&mut self, ctx: &mut Context<'_, WireMsg>, from: NodeId, msg: &WireMsg) {
        let ((), actions) = capture(ctx, |sub| self.inner.on_packet(sub, from, msg));
        self.relay(ctx, actions);
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, WireMsg>, timer: TimerKey) {
        let ((), actions) = capture(ctx, |sub| self.inner.on_timer(sub, timer));
        self.relay(ctx, actions);
    }
    fn on_app_broadcast(&mut self, ctx: &mut Context<'_, WireMsg>, payload: AppPayload) {
        let ((), actions) = capture(ctx, |sub| self.inner.on_app_broadcast(sub, payload));
        self.relay(ctx, actions);
    }
    fn on_byzantine(&mut self, _ctx: &mut Context<'_, WireMsg>, active: bool) {
        self.active = active;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzcast_core::message::DataMsg;
    use byzcast_core::ByzcastConfig;
    use byzcast_crypto::{KeyRegistry, SignerId, SimScheme, Verifier};
    use byzcast_sim::{SimRng, SimTime};
    use std::sync::Arc;

    fn byz(id: u32, reg: &KeyRegistry<SimScheme>) -> ByzcastNode {
        let verifier: Arc<dyn Verifier + Send + Sync> = Arc::new(reg.verifier());
        ByzcastNode::new(
            NodeId(id),
            ByzcastConfig::default(),
            Box::new(reg.signer(SignerId(id))),
            verifier,
        )
    }

    fn drive<P: Protocol>(
        p: &mut P,
        id: u32,
        f: impl FnOnce(&mut P, &mut Context<'_, P::Msg>),
    ) -> Vec<Action<P::Msg>> {
        let mut rng = SimRng::new(0);
        let mut actions = Vec::new();
        {
            let mut ctx = Context::new(NodeId(id), SimTime::from_secs(1), &mut rng, &mut actions);
            f(p, &mut ctx);
        }
        actions
    }

    fn sends<M>(actions: &[Action<M>]) -> Vec<&M> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Send(m) => Some(m),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn inactive_flapper_passes_everything_through() {
        let reg = KeyRegistry::generate(1, 8);
        let mut flap =
            FlappingNode::new(byz(1, &reg), FlapBehavior::Mute(MutePolicy::DropEverything));
        assert!(!flap.is_active());
        // Gossip tick: everything the correct node emits goes out verbatim.
        let actions = drive(&mut flap, 1, |p, ctx| p.on_timer(ctx, TimerKey(1)));
        assert!(!sends(&actions).is_empty());
        assert_eq!(flap.suppressed, 0);
    }

    #[test]
    fn mute_window_suppresses_then_recovers() {
        let reg = KeyRegistry::generate(1, 8);
        let mut flap =
            FlappingNode::new(byz(1, &reg), FlapBehavior::Mute(MutePolicy::DropEverything));
        drive(&mut flap, 1, |p, ctx| p.on_byzantine(ctx, true));
        assert!(flap.is_active());
        let actions = drive(&mut flap, 1, |p, ctx| p.on_timer(ctx, TimerKey(1)));
        assert!(sends(&actions).is_empty());
        assert!(flap.suppressed >= 1);
        // Deactivate: the node speaks again. Hand it a message so the next
        // gossip tick has something to advertise.
        drive(&mut flap, 1, |p, ctx| p.on_byzantine(ctx, false));
        let m = DataMsg::sign(&reg.signer(SignerId(0)), 1, 5, 64);
        drive(&mut flap, 1, |p, ctx| {
            p.on_packet(ctx, NodeId(0), &WireMsg::Data(m))
        });
        let actions = drive(&mut flap, 1, |p, ctx| p.on_timer(ctx, TimerKey(1)));
        assert!(!sends(&actions).is_empty());
    }

    #[test]
    fn forger_window_corrupts_only_relays_and_only_while_active() {
        let reg = KeyRegistry::generate(1, 8);
        let mut inner = byz(1, &reg);
        inner.set_overlay_protocol(Box::new(crate::AlwaysDominator));
        let mut flap = FlappingNode::new(inner, FlapBehavior::Forger);
        drive(&mut flap, 1, |p, ctx| p.on_timer(ctx, TimerKey(1))); // join overlay
        let v = reg.verifier();

        // Inactive: relays stay valid.
        let m = DataMsg::sign(&reg.signer(SignerId(0)), 1, 5, 64);
        let actions = drive(&mut flap, 1, |p, ctx| {
            p.on_packet(ctx, NodeId(0), &WireMsg::Data(m))
        });
        for s in sends(&actions) {
            if let WireMsg::Data(d) = s {
                assert!(d.verify(&v), "inactive flapper corrupted a relay");
            }
        }
        assert_eq!(flap.tampered, 0);

        // Active: the relayed copy is forged (fresh seq so it is not deduped).
        drive(&mut flap, 1, |p, ctx| p.on_byzantine(ctx, true));
        let m2 = DataMsg::sign(&reg.signer(SignerId(0)), 2, 6, 64);
        let actions = drive(&mut flap, 1, |p, ctx| {
            p.on_packet(ctx, NodeId(0), &WireMsg::Data(m2))
        });
        let datas: Vec<_> = sends(&actions)
            .into_iter()
            .filter_map(|m| match m {
                WireMsg::Data(d) => Some(d),
                _ => None,
            })
            .collect();
        assert_eq!(datas.len(), 1);
        assert!(!datas[0].verify(&v));
        assert_eq!(flap.tampered, 1);
    }
}
