//! Deliberately broken "correct" protocols, used to prove the chaos
//! harness's oracles catch real bugs.
//!
//! A [`SabotagedNode`] runs the shipped protocol but corrupts its *delivery*
//! behaviour in a targeted way, each variant tripping exactly one invariant:
//! the chaos shrinker's regression tests and the replay corpus are built on
//! these. They are test instruments, never part of an adversary mix.

use byzcast_core::message::WireMsg;
use byzcast_core::ByzcastNode;
use byzcast_sim::node::Action;
use byzcast_sim::{AppPayload, Context, NodeId, Protocol, TimerKey};

use crate::{capture, emit};

/// Which delivery bug a [`SabotagedNode`] exhibits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SabotageKind {
    /// Every delivery is emitted twice (violates no-duplication).
    DoubleDeliver,
    /// The first delivery is accompanied by a delivery of a payload that was
    /// never broadcast (violates validity).
    PhantomDeliver,
    /// All deliveries are swallowed (violates semi-reliability).
    DropDeliver,
}

impl SabotageKind {
    /// Stable corpus-file name for the kind.
    pub fn name(self) -> &'static str {
        match self {
            SabotageKind::DoubleDeliver => "double-deliver",
            SabotageKind::PhantomDeliver => "phantom-deliver",
            SabotageKind::DropDeliver => "drop-deliver",
        }
    }

    /// Parses a [`SabotageKind::name`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "double-deliver" => Some(SabotageKind::DoubleDeliver),
            "phantom-deliver" => Some(SabotageKind::PhantomDeliver),
            "drop-deliver" => Some(SabotageKind::DropDeliver),
            _ => None,
        }
    }
}

/// XOR mask distinguishing a phantom payload id from any real one.
pub const PHANTOM_MASK: u64 = 0x5AB0;

/// A correct node with one injected delivery bug.
pub struct SabotagedNode {
    inner: ByzcastNode,
    kind: SabotageKind,
    phantom_emitted: bool,
}

impl SabotagedNode {
    /// Wraps `inner` with the given bug.
    pub fn new(inner: ByzcastNode, kind: SabotageKind) -> Self {
        SabotagedNode {
            inner,
            kind,
            phantom_emitted: false,
        }
    }

    /// The wrapped (correct-protocol) node.
    pub fn inner(&self) -> &ByzcastNode {
        &self.inner
    }

    fn relay(&mut self, ctx: &mut Context<'_, WireMsg>, actions: Vec<Action<WireMsg>>) {
        for a in actions {
            match a {
                Action::Deliver { origin, payload_id } => match self.kind {
                    SabotageKind::DoubleDeliver => {
                        ctx.deliver(origin, payload_id);
                        ctx.deliver(origin, payload_id);
                    }
                    SabotageKind::PhantomDeliver => {
                        ctx.deliver(origin, payload_id);
                        if !self.phantom_emitted {
                            self.phantom_emitted = true;
                            ctx.deliver(origin, payload_id ^ PHANTOM_MASK);
                        }
                    }
                    SabotageKind::DropDeliver => {}
                },
                other => emit(ctx, other),
            }
        }
    }
}

impl Protocol for SabotagedNode {
    type Msg = WireMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, WireMsg>) {
        let ((), actions) = capture(ctx, |sub| self.inner.on_start(sub));
        self.relay(ctx, actions);
    }
    fn on_packet(&mut self, ctx: &mut Context<'_, WireMsg>, from: NodeId, msg: &WireMsg) {
        let ((), actions) = capture(ctx, |sub| self.inner.on_packet(sub, from, msg));
        self.relay(ctx, actions);
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, WireMsg>, timer: TimerKey) {
        let ((), actions) = capture(ctx, |sub| self.inner.on_timer(sub, timer));
        self.relay(ctx, actions);
    }
    fn on_app_broadcast(&mut self, ctx: &mut Context<'_, WireMsg>, payload: AppPayload) {
        let ((), actions) = capture(ctx, |sub| self.inner.on_app_broadcast(sub, payload));
        self.relay(ctx, actions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzcast_core::message::DataMsg;
    use byzcast_core::ByzcastConfig;
    use byzcast_crypto::{KeyRegistry, SignerId, SimScheme, Verifier};
    use byzcast_sim::{SimRng, SimTime};
    use std::sync::Arc;

    fn byz(id: u32, reg: &KeyRegistry<SimScheme>) -> ByzcastNode {
        let verifier: Arc<dyn Verifier + Send + Sync> = Arc::new(reg.verifier());
        ByzcastNode::new(
            NodeId(id),
            ByzcastConfig::default(),
            Box::new(reg.signer(SignerId(id))),
            verifier,
        )
    }

    fn deliveries(actions: &[Action<WireMsg>]) -> Vec<(NodeId, u64)> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Deliver { origin, payload_id } => Some((*origin, *payload_id)),
                _ => None,
            })
            .collect()
    }

    fn receive(
        node: &mut SabotagedNode,
        seq: u64,
        payload_id: u64,
        reg: &KeyRegistry<SimScheme>,
    ) -> Vec<Action<WireMsg>> {
        let m = DataMsg::sign(&reg.signer(SignerId(0)), seq, payload_id, 64);
        let mut rng = SimRng::new(0);
        let mut actions = Vec::new();
        {
            let mut ctx = Context::new(NodeId(1), SimTime::from_secs(1), &mut rng, &mut actions);
            node.on_packet(&mut ctx, NodeId(0), &WireMsg::Data(m));
        }
        actions
    }

    #[test]
    fn kinds_round_trip_through_names() {
        for k in [
            SabotageKind::DoubleDeliver,
            SabotageKind::PhantomDeliver,
            SabotageKind::DropDeliver,
        ] {
            assert_eq!(SabotageKind::parse(k.name()), Some(k));
        }
        assert_eq!(SabotageKind::parse("nope"), None);
    }

    #[test]
    fn double_deliver_duplicates() {
        let reg = KeyRegistry::generate(1, 8);
        let mut node = SabotagedNode::new(byz(1, &reg), SabotageKind::DoubleDeliver);
        let ds = deliveries(&receive(&mut node, 1, 5, &reg));
        assert_eq!(ds, vec![(NodeId(0), 5), (NodeId(0), 5)]);
    }

    #[test]
    fn phantom_deliver_adds_one_unoriginated_payload() {
        let reg = KeyRegistry::generate(1, 8);
        let mut node = SabotagedNode::new(byz(1, &reg), SabotageKind::PhantomDeliver);
        let ds = deliveries(&receive(&mut node, 1, 5, &reg));
        assert_eq!(ds, vec![(NodeId(0), 5), (NodeId(0), 5 ^ PHANTOM_MASK)]);
        // Only once: the second reception is clean.
        let ds = deliveries(&receive(&mut node, 2, 6, &reg));
        assert_eq!(ds, vec![(NodeId(0), 6)]);
    }

    #[test]
    fn drop_deliver_swallows_everything() {
        let reg = KeyRegistry::generate(1, 8);
        let mut node = SabotagedNode::new(byz(1, &reg), SabotageKind::DropDeliver);
        assert!(deliveries(&receive(&mut node, 1, 5, &reg)).is_empty());
    }
}
