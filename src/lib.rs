//! # byzcast — Byzantine-tolerant broadcast for wireless ad-hoc networks
//!
//! Umbrella crate re-exporting the full public API of the reproduction of
//! *"Efficient Byzantine Broadcast in Wireless Ad-Hoc Networks"* (Drabkin,
//! Friedman & Segal, DSN 2005). See `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the experiment index.

pub use byzcast_adversary as adversary;
pub use byzcast_baselines as baselines;
pub use byzcast_core as core;
pub use byzcast_crypto as crypto;
pub use byzcast_fd as fd;
pub use byzcast_harness as harness;
pub use byzcast_overlay as overlay;
pub use byzcast_sim as sim;
